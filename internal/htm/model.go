package htm

// The capacity/conflict model axis: the structures that track speculative
// state, and the policy that resolves coherence conflicts, are inputs to the
// emulation rather than fixed properties of it. The default (l1bloom) is the
// 4th Generation Core design the paper measures — write set bounded by the
// L1, read set spilling into an imprecise secondary filter, requester-wins
// eager conflict detection. The alternatives reproduce other points of the
// published HTM design space: a strict limited read/write-set HTM whose
// tracking is decoupled from the cache (fixed-entry sets, capacity abort on
// overflow — the FORTH limited-set design), a victim-buffer HTM that spills
// evicted speculative writes into a small fully-associative buffer before
// dooming the transaction, and a requester-loses conflict-resolution variant
// where the thread that trips over existing speculative state is the one
// that aborts. Every model runs under the same conflict directory, so the
// differential oracle (internal/check) cross-checks all of them against the
// non-speculative engines.

import (
	"fmt"

	"tsxhpc/internal/sim"
)

const (
	// strictWriteCap and strictReadCap are the strict model's fixed set
	// sizes, in cache lines. Deliberately small and asymmetric (reads are
	// cheaper to track than buffered writes), matching the limited-set
	// designs that bound speculative state with dedicated structures rather
	// than the data cache.
	strictWriteCap = 16
	strictReadCap  = 64
	// victimWays is the victim-buffer model's spill capacity: how many
	// evicted speculatively written lines the fully-associative side buffer
	// holds before a further eviction becomes a capacity abort.
	victimWays = 8
)

// CapacityModel is the pluggable speculation-tracking design. The runtime
// resolves one from sim.Config.HTMModel at construction and routes every
// model-dependent decision through it: what happens when a line joins a
// transaction's footprint, what an L1 eviction of speculative state means,
// which side of a coherence conflict aborts, and what the commit-time
// write-set-in-structure invariant asserts. Implementations are stateless;
// per-transaction model state (the victim buffer) lives on Txn.
type CapacityModel interface {
	// Name is the model's -htmmodel spelling, also used as the probe-counter
	// namespace for non-default models.
	Name() string
	// Track is invoked when line becomes a newly tracked member of t's read
	// or write set (it never fires twice for the same line and set). A model
	// with explicit set bounds dooms t here when the footprint overflows.
	Track(t *Txn, line sim.Addr, write bool)
	// Evict handles the L1 eviction of a line carrying t's speculative
	// marks; wasWrite reports whether the line is in t's write set.
	Evict(t *Txn, line sim.Addr, wasWrite bool)
	// RequesterWins reports the conflict-resolution policy: true dooms the
	// transactions already holding a conflicting line (the default), false
	// dooms the in-flight transaction performing the access.
	RequesterWins() bool
	// CheckCommit enforces the model's write-set-in-structure invariant at
	// commit (armed by sim.Config.Invariants), panicking with a typed
	// *sim.InvariantError on a torn write set.
	CheckCommit(t *Txn)
}

// ModelNames lists the valid sim.Config.HTMModel spellings, default first.
func ModelNames() []string { return []string{"l1bloom", "strict", "victim", "reqloses"} }

// ParseModel resolves a capacity-model name; "" selects the default l1bloom
// design. Flag parsing uses it so an unknown model is a usage error instead
// of a construction-time panic.
func ParseModel(name string) (CapacityModel, error) {
	switch name {
	case "", "l1bloom":
		return l1bloomModel{}, nil
	case "strict":
		return strictModel{}, nil
	case "victim":
		return victimModel{}, nil
	case "reqloses":
		return reqLosesModel{}, nil
	}
	return nil, fmt.Errorf("htm: unknown capacity model %q (valid: l1bloom, strict, victim, reqloses)", name)
}

// l1bloomModel is the paper hardware's design and the default: the write set
// lives in the L1 (losing a written line is fatal), evicted read lines
// demote to the Bloom secondary filter, and the requester wins conflicts.
type l1bloomModel struct{}

func (l1bloomModel) Name() string                  { return "l1bloom" }
func (l1bloomModel) Track(*Txn, sim.Addr, bool)    {}
func (l1bloomModel) RequesterWins() bool           { return true }
func (l1bloomModel) CheckCommit(t *Txn)            { t.rt.checkCommitL1(t, nil) }
func (l1bloomModel) Evict(t *Txn, line sim.Addr, wasWrite bool) {
	if wasWrite {
		t.rt.doom(t, Capacity, false)
		return
	}
	t.rt.demoteRead(t, line)
}

// strictModel is the limited read/write-set design: fixed-entry tracking
// structures independent of the data cache. A transaction whose footprint
// exceeds either cap aborts with Capacity the moment the overflowing line
// joins the set; L1 evictions are irrelevant (the sets are not cache-backed),
// so neither associativity pressure nor eviction storms abort it, and the
// Bloom secondary filter is never engaged.
type strictModel struct{}

func (strictModel) Name() string { return "strict" }
func (strictModel) Track(t *Txn, _ sim.Addr, write bool) {
	if write {
		if len(t.writeLines) > strictWriteCap {
			t.rt.doom(t, Capacity, false)
		}
	} else if len(t.readLines) > strictReadCap {
		t.rt.doom(t, Capacity, false)
	}
}
func (strictModel) Evict(*Txn, sim.Addr, bool) {}
func (strictModel) RequesterWins() bool        { return true }
func (strictModel) CheckCommit(t *Txn) {
	t.rt.checkCommitDir(t)
	if len(t.writeLines) > strictWriteCap || len(t.readLines) > strictReadCap {
		panic(&sim.InvariantError{Point: "htm-writeset", Thread: t.ctx.ID(), Clock: t.ctx.Now(),
			Detail: fmt.Sprintf("strict model committing past its caps: %d written (cap %d), %d read (cap %d)",
				len(t.writeLines), strictWriteCap, len(t.readLines), strictReadCap)})
	}
}

// victimModel keeps the L1-tracked design but gives evicted speculative
// writes a second chance: a written line displaced from the L1 spills into a
// small fully-associative victim buffer, and only overflowing that buffer is
// a capacity abort. Read evictions behave exactly as in l1bloom. Its commit
// set is therefore a superset of the default model's on any schedule the two
// execute identically.
type victimModel struct{}

func (victimModel) Name() string               { return "victim" }
func (victimModel) Track(*Txn, sim.Addr, bool) {}
func (victimModel) RequesterWins() bool        { return true }
func (victimModel) Evict(t *Txn, line sim.Addr, wasWrite bool) {
	if !wasWrite {
		t.rt.demoteRead(t, line)
		return
	}
	for _, v := range t.victim {
		if v == line {
			// Re-evicted after a re-fetch: the spill slot is still held.
			return
		}
	}
	if len(t.victim) == victimWays {
		t.rt.doom(t, Capacity, false)
		return
	}
	t.victim = append(t.victim, line)
}
func (victimModel) CheckCommit(t *Txn) { t.rt.checkCommitL1(t, t.inVictim) }

// reqLosesModel inverts the conflict-resolution policy of the default
// design: a transactional access that trips over another transaction's
// speculative state dooms the requester, letting the established holder run
// on. Non-transactional accesses still win unconditionally — a plain store
// (a fallback-lock acquisition, most importantly) cannot be refused, which
// is what guarantees forward progress through the elision wrappers' lock
// path. Capacity behavior is the default L1+Bloom design.
//
// A losing requester's cache mutation has already landed when the policy is
// decided, so a holder's L1 write mark can be legitimately stripped by an
// invalidation whose requester then aborted; the commit invariant therefore
// checks the conflict directory (the authoritative structure) only.
type reqLosesModel struct{ l1bloomModel }

func (reqLosesModel) Name() string        { return "reqloses" }
func (reqLosesModel) RequesterWins() bool { return false }
func (reqLosesModel) CheckCommit(t *Txn)  { t.rt.checkCommitDir(t) }

// inVictim reports whether line occupies one of t's victim-buffer slots.
func (t *Txn) inVictim(line sim.Addr) bool {
	for _, v := range t.victim {
		if v == line {
			return true
		}
	}
	return false
}

// demoteRead moves an evicted transactionally read line from the precise
// conflict directory into the Bloom secondary filter (the shared read-evict
// path of the cache-backed models), with the occasional imprecision abort
// per Costs.ReadEvictAbortPerMille.
func (r *Runtime) demoteRead(t *Txn, line sim.Addr) {
	owner := t.ctx
	if pm := r.m.Costs.ReadEvictAbortPerMille; pm > 0 && owner.Rand.Int63n(1000) < int64(pm) {
		r.doom(t, Capacity, false)
		return
	}
	rw, rbit := dirReaderBit(owner.ID())
	if i := r.lines.find(line); i >= 0 && r.lines.vals[i][rw]&rbit != 0 {
		v := &r.lines.vals[i]
		if v[rw] &^= rbit; v.empty() {
			r.lines.remove(i)
		}
		// Drop the line from the cleanup list; the order of readLines is
		// never observable, so a swap-remove suffices.
		for k, l := range t.readLines {
			if l == line {
				last := len(t.readLines) - 1
				t.readLines[k] = t.readLines[last]
				t.readLines = t.readLines[:last]
				break
			}
		}
		t.bloom.add(line)
		r.ovf[owner.ID()>>6] |= 1 << uint(owner.ID()&63)
	}
}

// checkCommitDir asserts every written line is still registered in the
// conflict directory — the invariant every model shares, since the directory
// is what conflict detection consults.
func (r *Runtime) checkCommitDir(t *Txn) {
	w, bit := dirWriterBit(t.ctx.ID())
	for _, line := range t.writeLines {
		if i := r.lines.find(line); i < 0 || r.lines.vals[i][w]&bit == 0 {
			panic(&sim.InvariantError{Point: "htm-writeset", Thread: t.ctx.ID(), Clock: t.ctx.Now(),
				Detail: fmt.Sprintf("committing with write-set line %#x missing from the conflict directory", line)})
		}
	}
}

// checkCommitL1 is the cache-backed models' commit invariant: directory
// membership plus the L1 write mark. Losing the mark was obliged to deliver
// a capacity abort (eviction) or a conflict doom (remote write); the
// legitimate exceptions are a conflicting access currently in flight — its
// cache mutation has landed but its conflict hook (the model's defined
// conflict instant) has not run yet, and this commit wins the race — and,
// when the model provides one, an alternate structure still holding the line
// (the victim buffer).
func (r *Runtime) checkCommitL1(t *Txn, also func(sim.Addr) bool) {
	w, bit := dirWriterBit(t.ctx.ID())
	for _, line := range t.writeLines {
		if i := r.lines.find(line); i < 0 || r.lines.vals[i][w]&bit == 0 {
			panic(&sim.InvariantError{Point: "htm-writeset", Thread: t.ctx.ID(), Clock: t.ctx.Now(),
				Detail: fmt.Sprintf("committing with write-set line %#x missing from the conflict directory", line)})
		}
		if !r.m.TxMarked(t.ctx, line, true) && !r.m.AccessInFlight(t.ctx, line) && (also == nil || !also(line)) {
			panic(&sim.InvariantError{Point: "htm-writeset", Thread: t.ctx.ID(), Clock: t.ctx.Now(),
				Detail: fmt.Sprintf("committing with write-set line %#x no longer write-marked in L1 (torn write set)", line)})
		}
	}
}
