package htm

import (
	"math/rand"
	"testing"

	"tsxhpc/internal/sim"
)

// TestBloomNeverForgets is the Bloom filter's one hard guarantee, stated as
// a randomized property: over many independently drawn read sets (any size,
// any address pattern), membership of an added line is NEVER denied. False
// positives are allowed — they cost a spurious conflict abort — but a false
// negative would let a real conflict commit, a correctness bug.
func TestBloomNeverForgets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		var b bloom
		n := 1 + rng.Intn(600) // up to well past the 256-bit filter's saturation
		lines := make([]sim.Addr, n)
		for i := range lines {
			// Line-aligned addresses across a 1 GB range, plus adversarial
			// low-entropy patterns every few trials.
			switch trial % 4 {
			case 0:
				lines[i] = sim.Addr(rng.Int63n(1<<30)) &^ (sim.LineSize - 1)
			case 1:
				lines[i] = sim.Addr(i * 4096) // one cache set, page stride
			case 2:
				lines[i] = sim.Addr(i * sim.LineSize) // dense sequential
			default:
				lines[i] = sim.Addr((i * i * sim.LineSize) % (1 << 28))
			}
			b.add(lines[i])
		}
		for _, l := range lines {
			if !b.has(l) {
				t.Fatalf("trial %d: bloom denies line %#x out of %d added (false negative)", trial, l, n)
			}
		}
	}
}

// FuzzBloomNoFalseNegatives lets the fuzzer hunt for an address multiset
// that the hash mixing loses. Bytes are consumed eight at a time as raw
// addresses (masked to line alignment); every added address must test
// positive afterwards.
func FuzzBloomNoFalseNegatives(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		var b bloom
		var lines []sim.Addr
		for i := 0; i+8 <= len(data) && len(lines) < 1024; i += 8 {
			var x uint64
			for k := 0; k < 8; k++ {
				x = x<<8 | uint64(data[i+k])
			}
			l := sim.Addr(x) &^ (sim.LineSize - 1)
			lines = append(lines, l)
			b.add(l)
		}
		for _, l := range lines {
			if !b.has(l) {
				t.Fatalf("false negative for %#x", l)
			}
		}
	})
}

// TestEvictedReadLineConflictAlwaysAborts is the end-to-end form of the
// no-false-negative property: with the probabilistic read-evict abort
// disabled (so demotion to the secondary structure is the ONLY mechanism in
// play), a transaction whose read line was evicted from L1 must still abort
// when another thread truly writes that line — for every line of the
// overflowed set, not just a lucky one.
func TestEvictedReadLineConflictAlwaysAborts(t *testing.T) {
	const overflowReads = 12 // > 8 ways: the first reads' lines are evicted
	for victim := 0; victim < overflowReads; victim++ {
		cfg := sim.DefaultConfig()
		cfg.Costs.ReadEvictAbortPerMille = 0
		m := sim.New(cfg)
		r := New(m)
		base := m.Mem.AllocLine(16 * 4096)
		target := base + sim.Addr(victim*4096)
		var cause AbortCause
		m.Run(2, func(c *sim.Context) {
			if c.ID() == 0 {
				cause, _ = r.Try(c, func(tx *Txn) {
					for i := 0; i < overflowReads; i++ {
						tx.Load(base + sim.Addr(i*4096)) // one set, page stride
					}
					tx.Ctx().Compute(8000) // window for the remote write
					tx.Load(base + 8)      // touch to notice the doom
				})
				return
			}
			c.Compute(3000)
			c.Store(target, 1)
		})
		if cause != Conflict {
			t.Fatalf("victim line %d: cause = %v, want Conflict (evicted read line must stay conflict-tracked)", victim, cause)
		}
	}
}
