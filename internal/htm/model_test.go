package htm

import (
	"strings"
	"testing"

	"tsxhpc/internal/sim"
)

// machModel builds a machine with a specific capacity model and allocator
// layout, with the model's commit invariant armed — every commit in these
// tests also proves the model's write-set-in-structure claim.
func machModel(model, layout string) (*sim.Machine, *Runtime) {
	cfg := sim.DefaultConfig()
	cfg.HTMModel = model
	cfg.Layout = layout
	cfg.Invariants = true
	m := sim.New(cfg)
	return m, New(m)
}

func TestParseModel(t *testing.T) {
	names := ModelNames()
	if len(names) != 4 {
		t.Fatalf("ModelNames() = %v; want 4 models", names)
	}
	for _, name := range names {
		mod, err := ParseModel(name)
		if err != nil {
			t.Errorf("ParseModel(%q): %v", name, err)
		} else if mod.Name() != name {
			t.Errorf("ParseModel(%q).Name() = %q", name, mod.Name())
		}
	}
	if mod, err := ParseModel(""); err != nil || mod.Name() != "l1bloom" {
		t.Errorf("empty name must default to l1bloom, got %v, %v", mod, err)
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Error("ParseModel(bogus) succeeded")
	} else if !strings.Contains(err.Error(), "l1bloom") {
		t.Errorf("error %q does not list the valid names", err)
	}
	if New(sim.New(sim.DefaultConfig())).ModelName() != "l1bloom" {
		t.Error("default runtime model is not l1bloom")
	}
}

// TestStrictWriteCap: the strict model's write set holds exactly
// strictWriteCap entries — a transaction writing one line more must abort by
// capacity on the overflowing access, regardless of the fact that the
// L1-geometry model would have committed it (17 lines spread over 17 sets).
func TestStrictWriteCap(t *testing.T) {
	for _, tc := range []struct {
		lines int
		want  AbortCause
	}{
		{strictWriteCap, NoAbort},
		{strictWriteCap + 1, Capacity},
	} {
		m, r := machModel("strict", "packed")
		addrs := make([]sim.Addr, tc.lines)
		for i := range addrs {
			addrs[i] = m.Mem.AllocLine(8)
		}
		m.Run(1, func(c *sim.Context) {
			cause, _ := r.Try(c, func(tx *Txn) {
				for i, a := range addrs {
					tx.Store(a, uint64(i+1))
				}
			})
			if cause != tc.want {
				t.Errorf("%d write lines: cause = %v, want %v", tc.lines, cause, tc.want)
			}
		})
		if tc.want == Capacity && m.Mem.ReadRaw(addrs[0]) != 0 {
			t.Errorf("%d write lines: over-capacity transaction leaked a write", tc.lines)
		}
		if tc.want == NoAbort && m.Mem.ReadRaw(addrs[0]) != 1 {
			t.Errorf("%d write lines: at-capacity transaction did not commit", tc.lines)
		}
	}
}

// TestStrictReadCap mirrors TestStrictWriteCap on the read side: exactly
// strictReadCap tracked read lines commit, one more aborts by capacity.
func TestStrictReadCap(t *testing.T) {
	for _, tc := range []struct {
		lines int
		want  AbortCause
	}{
		{strictReadCap, NoAbort},
		{strictReadCap + 1, Capacity},
	} {
		m, r := machModel("strict", "packed")
		addrs := make([]sim.Addr, tc.lines)
		for i := range addrs {
			addrs[i] = m.Mem.AllocLine(8)
		}
		m.Run(1, func(c *sim.Context) {
			cause, _ := r.Try(c, func(tx *Txn) {
				for _, a := range addrs {
					tx.Load(a)
				}
			})
			if cause != tc.want {
				t.Errorf("%d read lines: cause = %v, want %v", tc.lines, cause, tc.want)
			}
		})
	}
}

// TestVictimAbsorbsL1Spill: under the colliding layout every allocation
// lands in cache set 0, so a write set wider than the 8 L1 ways evicts
// speculative lines. l1bloom aborts on the first such eviction; the victim
// model spills up to victimWays lines into its buffer and still commits —
// and the spilled writes must be visible in memory afterwards. Past
// ways+victimWays the victim model aborts too.
func TestVictimAbsorbsL1Spill(t *testing.T) {
	const l1Ways = 8
	run := func(model string, lines int) (AbortCause, *sim.Machine, []sim.Addr) {
		m, r := machModel(model, "colliding")
		addrs := make([]sim.Addr, lines)
		for i := range addrs {
			addrs[i] = m.Mem.AllocLine(8)
		}
		var got AbortCause
		m.Run(1, func(c *sim.Context) {
			got, _ = r.Try(c, func(tx *Txn) {
				for i, a := range addrs {
					tx.Store(a, uint64(i+1))
				}
			})
		})
		return got, m, addrs
	}

	spill := l1Ways + 4 // overflows the L1 set, fits the victim buffer
	if cause, _, _ := run("l1bloom", spill); cause != Capacity {
		t.Errorf("l1bloom with %d colliding write lines: cause = %v, want Capacity", spill, cause)
	}
	cause, m, addrs := run("victim", spill)
	if cause != NoAbort {
		t.Errorf("victim with %d colliding write lines: cause = %v, want commit", spill, cause)
	} else {
		for i, a := range addrs {
			if got := m.Mem.ReadRaw(a); got != uint64(i+1) {
				t.Errorf("victim commit: line %d holds %d, want %d (spilled write lost)", i, got, i+1)
			}
		}
	}
	over := l1Ways + victimWays + 1
	if cause, _, _ := run("victim", over); cause != Capacity {
		t.Errorf("victim with %d colliding write lines: cause = %v, want Capacity", over, cause)
	}
}

// TestConflictResolutionDirection pins the requester-wins/requester-loses
// split on one deterministic two-thread schedule: thread 0 opens a
// transaction and writes the contended line first, thread 1 arrives second.
// Under the default policy the requester (thread 1) dooms the holder; under
// reqloses the requester dooms itself and the holder commits.
func TestConflictResolutionDirection(t *testing.T) {
	run := func(model string) [2]AbortCause {
		m, r := machModel(model, "packed")
		a := m.Mem.AllocLine(8)
		var causes [2]AbortCause
		m.Run(2, func(c *sim.Context) {
			if c.ID() == 0 {
				causes[0], _ = r.Try(c, func(tx *Txn) {
					tx.Store(a, 1)
					c.Compute(4000) // hold the write while thread 1 arrives
				})
			} else {
				c.Compute(2000) // let thread 0 write first
				causes[1], _ = r.Try(c, func(tx *Txn) {
					tx.Store(a, 2)
				})
			}
		})
		return causes
	}

	wins := run("l1bloom")
	if wins[0] != Conflict || wins[1] != NoAbort {
		t.Errorf("requester-wins: holder=%v requester=%v; want holder doomed, requester committed", wins[0], wins[1])
	}
	loses := run("reqloses")
	if loses[0] != NoAbort || loses[1] != Conflict {
		t.Errorf("requester-loses: holder=%v requester=%v; want holder committed, requester doomed", loses[0], loses[1])
	}
}

// TestReqLosesConflictShapes walks the requester-loses policy through each
// structure a conflict can be detected in: the precise directory's reader
// and writer planes, and the Bloom-demoted overflow read set. In every
// shape the established holder commits and the late transactional
// requester dooms itself.
func TestReqLosesConflictShapes(t *testing.T) {
	run := func(layout string, holder, requester func(tx *Txn, addrs []sim.Addr), nLines int) [2]AbortCause {
		m, r := machModel("reqloses", layout)
		addrs := make([]sim.Addr, nLines)
		for i := range addrs {
			addrs[i] = m.Mem.AllocLine(8)
		}
		var causes [2]AbortCause
		m.Run(2, func(c *sim.Context) {
			if c.ID() == 0 {
				causes[0], _ = r.Try(c, func(tx *Txn) {
					holder(tx, addrs)
					c.Compute(8000)
				})
			} else {
				c.Compute(4000)
				causes[1], _ = r.Try(c, func(tx *Txn) {
					requester(tx, addrs)
				})
			}
		})
		return causes
	}

	t.Run("write hits reader", func(t *testing.T) {
		causes := run("packed",
			func(tx *Txn, a []sim.Addr) { tx.Load(a[0]) },
			func(tx *Txn, a []sim.Addr) { tx.Store(a[0], 2) }, 1)
		if causes[0] != NoAbort || causes[1] != Conflict {
			t.Errorf("holder=%v requester=%v; want reader to survive, writer to self-doom", causes[0], causes[1])
		}
	})
	t.Run("read hits writer", func(t *testing.T) {
		causes := run("packed",
			func(tx *Txn, a []sim.Addr) { tx.Store(a[0], 1) },
			func(tx *Txn, a []sim.Addr) { tx.Load(a[0]) }, 1)
		if causes[0] != NoAbort || causes[1] != Conflict {
			t.Errorf("holder=%v requester=%v; want writer to survive, reader to self-doom", causes[0], causes[1])
		}
	})
	t.Run("write hits bloom-demoted reader", func(t *testing.T) {
		// 12 colliding read lines overflow the 8-way set, demoting the
		// earliest reads into the Bloom filter; the requester's write to the
		// first line must still be seen as a conflict (via the overflow set)
		// and doom the requester, not the holder.
		causes := run("colliding",
			func(tx *Txn, a []sim.Addr) {
				for _, l := range a {
					tx.Load(l)
				}
			},
			func(tx *Txn, a []sim.Addr) { tx.Store(a[0], 2) }, 12)
		if causes[0] != NoAbort || causes[1] != Conflict {
			t.Errorf("holder=%v requester=%v; want demoted reader to survive, writer to self-doom", causes[0], causes[1])
		}
	})
}

// TestVictimReEvictionAndReadDemotion covers the victim model's remaining
// eviction paths: a spilled line that is re-fetched and evicted a second
// time must reuse its victim slot (not consume another one), and an evicted
// transactionally read line demotes to the Bloom filter exactly as under
// the default model.
func TestVictimReEvictionAndReadDemotion(t *testing.T) {
	m, r := machModel("victim", "colliding")
	a := make([]sim.Addr, 10)
	for i := range a {
		a[i] = m.Mem.AllocLine(8)
	}
	reads := make([]sim.Addr, 9)
	for i := range reads {
		reads[i] = m.Mem.AllocLine(8)
	}
	var causes [2]AbortCause
	var victimSlots int
	var demoted bool
	m.Run(1, func(c *sim.Context) {
		causes[0], _ = r.Try(c, func(tx *Txn) {
			// Fill the 8-way set past capacity: installing a[8] evicts a[0]
			// into the victim buffer (slot 1).
			for i := 0; i < 9; i++ {
				tx.Store(a[i], uint64(i+1))
			}
			// Re-fetch a[0] (evicting the now-LRU a[1]: slot 2), refresh
			// every other resident line so a[0] ages back to LRU, then bring
			// in a fresh line: a[0] is evicted a second time and must land
			// in its existing slot, not a third one.
			tx.Store(a[0], 100)
			for i := 2; i < 9; i++ {
				tx.Store(a[i], uint64(i+1))
			}
			tx.Store(a[9], 10)
			victimSlots = len(tx.victim)
		})
		// A second transaction overflows the set with reads only: the 9th
		// load evicts the oldest read line, which must demote to the Bloom
		// filter (never touch the victim buffer).
		causes[1], _ = r.Try(c, func(tx *Txn) {
			for _, l := range reads {
				tx.Load(l)
			}
			demoted = tx.bloom.has(sim.LineOf(reads[0])) && len(tx.victim) == 0
		})
	})
	if causes[0] != NoAbort || causes[1] != NoAbort {
		t.Fatalf("causes = %v, want two clean commits", causes)
	}
	if victimSlots != 2 {
		t.Errorf("victim buffer holds %d slots, want 2 (re-eviction must dedup)", victimSlots)
	}
	if !demoted {
		t.Error("evicted read line did not demote to the Bloom filter")
	}
	if got := m.Mem.ReadRaw(a[0]); got != 100 {
		t.Errorf("a[0] = %d, want 100 (spilled then re-written line lost)", got)
	}
	if got := m.Mem.ReadRaw(a[9]); got != 10 {
		t.Errorf("a[9] = %d, want 10", got)
	}
	if r.Stats.Commits != 2 || r.Stats.TotalAborts() != 0 {
		t.Errorf("stats = %+v, want two clean commits", r.Stats)
	}
}

// TestModelCommitInvariants: each model's commit-time write-set invariant
// catches the corruption it is defined over. The corruptions are injected
// directly (the checks exist to catch exactly the states no legitimate
// execution produces).
func TestModelCommitInvariants(t *testing.T) {
	expectViolation := func(t *testing.T, wantDetail string, body func(m *sim.Machine, r *Runtime)) {
		t.Helper()
		defer func() {
			p := recover()
			ie, ok := p.(*sim.InvariantError)
			if !ok {
				t.Fatalf("recovered %v, want *sim.InvariantError", p)
			}
			if ie.Point != "htm-writeset" || !strings.Contains(ie.Detail, wantDetail) {
				t.Fatalf("violation %q / %q, want htm-writeset mentioning %q", ie.Point, ie.Detail, wantDetail)
			}
		}()
		m, r := machModel(t.Name()[len("TestModelCommitInvariants/"):], "packed")
		body(m, r)
		t.Fatal("corrupted commit passed the invariant")
	}

	t.Run("strict", func(t *testing.T) {
		// Padding the write set past the cap (with duplicates, so the
		// directory check still passes) must trip the cap assertion — the
		// state Track is obliged to make unreachable.
		expectViolation(t, "past its caps", func(m *sim.Machine, r *Runtime) {
			a := m.Mem.AllocLine(8)
			m.Run(1, func(c *sim.Context) {
				tx := r.Begin(c)
				tx.Store(a, 1)
				for len(tx.writeLines) <= strictWriteCap {
					tx.writeLines = append(tx.writeLines, sim.LineOf(a))
				}
				tx.Commit()
			})
		})
	})
	t.Run("reqloses", func(t *testing.T) {
		// A write-set line missing from the conflict directory is torn state
		// under every model; reqloses checks the directory only.
		expectViolation(t, "missing from the conflict directory", func(m *sim.Machine, r *Runtime) {
			a := m.Mem.AllocLine(8)
			bogus := m.Mem.AllocLine(8)
			m.Run(1, func(c *sim.Context) {
				tx := r.Begin(c)
				tx.Store(a, 1)
				tx.writeLines = append(tx.writeLines, sim.LineOf(bogus))
				tx.Commit()
			})
		})
	})
	t.Run("victim", func(t *testing.T) {
		// A line neither L1-write-marked nor occupying a victim slot is a
		// torn write set for the victim model too.
		expectViolation(t, "no longer write-marked", func(m *sim.Machine, r *Runtime) {
			a := m.Mem.AllocLine(8)
			m.Run(1, func(c *sim.Context) {
				tx := r.Begin(c)
				tx.Store(a, 7)
				m.ClearTxMarks(c, sim.LineOf(a))
				tx.Commit()
			})
		})
	})
}
