package faults

// Job-level fault injection: disturbances aimed at the *runner* layer rather
// than at a simulated machine. Where Config models environmental noise inside
// one machine (spurious aborts, evictions), JobPlan models the sweep-scale
// failures a massive experiment run suffers on real infrastructure — a flaky
// host failing a cell's attempt, a poisoned cell that fails every time — so
// the supervision layer's retry/backoff/quarantine machinery can be exercised
// and tested deterministically.
//
// Like everything else in this package the schedule is a pure function of the
// seed: whether a cell fails, and on which attempts, is derived by hashing
// (seed, key), never drawn from a shared PRNG stream, so host parallelism and
// submission order cannot perturb it and a -jobchaos run is exactly
// reproducible.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strings"
)

// JobFault is the injected failure of one job attempt. It self-classifies
// for the runner's supervision taxonomy (structural contract, see
// runner.Classify).
type JobFault struct {
	Key     string
	Attempt int
	// Class is the supervision class the fault presents as: "transient"
	// (clears after TransientFailures attempts) or "deterministic" (a
	// poisoned cell; every attempt fails).
	Class string
}

func (f *JobFault) Error() string {
	return fmt.Sprintf("faults: injected %s job fault (cell %s, attempt %d)", f.Class, f.Key, f.Attempt)
}

func (f *JobFault) JobFailureClass() string { return f.Class }

// JobPlan is a deterministic schedule of job-level faults. The zero value
// injects nothing.
type JobPlan struct {
	// Seed drives the per-cell hash; equal plans produce equal schedules.
	Seed int64
	// TransientPerMille is the probability (in 1/1000, per cell — not per
	// attempt) that a cell is "on a flaky host": its first TransientFailures
	// attempts fail transiently, then it succeeds.
	TransientPerMille int
	// TransientFailures is how many leading attempts a flaky cell fails
	// (default 2 when a transient rate is set — within DefaultRetryPolicy's
	// budget, so a supervised sweep still completes).
	TransientFailures int
	// Poison lists key prefixes whose cells fail deterministically on every
	// attempt — the injected "this cell's workload is broken" case that must
	// end in quarantine, not retries.
	Poison []string
}

// Enabled reports whether the plan can inject anything.
func (p JobPlan) Enabled() bool {
	return p.TransientPerMille > 0 || len(p.Poison) > 0
}

// Check is the runner.RetryPolicy.Inject implementation: it decides the fate
// of one attempt as a pure function of (plan, key, attempt) and returns the
// fault to inject, or nil to let the attempt run.
func (p JobPlan) Check(key string, attempt int) error {
	for _, pre := range p.Poison {
		if pre != "" && strings.HasPrefix(key, pre) {
			return &JobFault{Key: key, Attempt: attempt, Class: "deterministic"}
		}
	}
	if p.TransientPerMille > 0 {
		n := p.TransientFailures
		if n <= 0 {
			n = 2
		}
		if attempt <= n && int(p.cellHash(key)%1000) < p.TransientPerMille {
			return &JobFault{Key: key, Attempt: attempt, Class: "transient"}
		}
	}
	return nil
}

// cellHash maps (seed, key) to the per-cell lottery draw.
func (p JobPlan) cellHash(key string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(p.Seed))
	h.Write(b[:])
	h.Write([]byte(key))
	return h.Sum64()
}

// JobChaos is the standard job-level stress profile behind -jobchaos: ~15% of
// cells land on a "flaky host" and fail their first two attempts transiently.
// No deterministic faults — a plain -jobchaos sweep must still succeed end to
// end (and byte-identically); poisoned cells are opted into with -poison.
func JobChaos(seed int64) JobPlan {
	return JobPlan{Seed: seed, TransientPerMille: 150, TransientFailures: 2}
}
