package faults

import (
	"testing"

	"tsxhpc/internal/htm"
	"tsxhpc/internal/sim"
	"tsxhpc/internal/ssync"
	"tsxhpc/internal/tm"
)

// elisionCounterRun executes the canonical contended workload — threads
// incrementing one shared counter under an elided global lock — on a machine
// carrying the given fault plan, and returns (final count, cycles, system).
func elisionCounterRun(t *testing.T, plan sim.FaultPlan, threads, incsPerThread int) (uint64, uint64, *tm.System) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Faults = plan
	cfg.StallCycles = 50_000_000 // watchdog armed: a livelock fails the test as a stall, not a timeout
	m := sim.New(cfg)
	sys := tm.NewSystem(m, tm.TSX)
	a := m.Mem.AllocLine(8)
	res, err := m.RunE(threads, func(c *sim.Context) {
		for i := 0; i < incsPerThread; i++ {
			sys.Atomic(c, func(tx tm.Tx) {
				tx.Store(a, tx.Load(a)+1)
			})
		}
	})
	if err != nil {
		t.Fatalf("workload stalled under fault injection: %v", err)
	}
	return m.Mem.ReadRaw(a), res.Cycles, sys
}

// TestSpuriousAbortsTerminateCorrectly is the headline acceptance check: at
// an abort probability of 10⁻³ per cycle — the highest rate the issue calls
// for — every transaction either retries to success or falls back to the
// lock, so the workload terminates with the exact count.
func TestSpuriousAbortsTerminateCorrectly(t *testing.T) {
	const threads, incs = 8, 400
	plan := Config{Seed: 7, SpuriousAbortPerMillion: 1000}
	count, _, sys := elisionCounterRun(t, plan, threads, incs)
	if want := uint64(threads * incs); count != want {
		t.Fatalf("count = %d, want %d", count, want)
	}
	if got := sys.HTM.Stats.Aborts[htm.Spurious]; got == 0 {
		t.Fatalf("no spurious aborts recorded at 1e-3/cycle over %d increments", threads*incs)
	}
}

// TestSameSeedSameSchedule checks reproducibility: two runs with an equal
// fault Config produce identical cycle counts and identical abort
// statistics, and a different seed produces a different schedule.
func TestSameSeedSameSchedule(t *testing.T) {
	run := func(seed int64) (uint64, htm.Stats) {
		_, cyc, sys := elisionCounterRun(t, Chaos(seed), 8, 200)
		return cyc, sys.HTM.Stats
	}
	cycA, statsA := run(42)
	cycB, statsB := run(42)
	if cycA != cycB || statsA != statsB {
		t.Fatalf("same seed diverged: cycles %d vs %d, stats %+v vs %+v", cycA, cycB, statsA, statsB)
	}
	cycC, _ := run(43)
	if cycC == cycA {
		t.Fatalf("different seeds produced identical cycle counts (%d); injector seed appears unused", cycA)
	}
}

// TestFaultsOffIsIdentity checks the byte-identity prerequisite at the
// machine level: a zero Config attaches no hooks, so a faulted-config run
// with all rates zero matches a plain run cycle for cycle.
func TestFaultsOffIsIdentity(t *testing.T) {
	_, plain, _ := elisionCounterRun(t, nil, 8, 200)
	_, zeroed, _ := elisionCounterRun(t, Config{Seed: 99}, 8, 200)
	if plain != zeroed {
		t.Fatalf("zero-rate fault config changed timing: %d vs %d cycles", plain, zeroed)
	}
}

// TestEvictStormsCauseCapacityAborts drives storms hard against a workload
// with a real write set and checks the storm path reaches the htm layer:
// forced evictions of written transactional lines must surface as capacity
// aborts, yet the workload still completes exactly.
func TestEvictStormsCauseCapacityAborts(t *testing.T) {
	cfg := sim.DefaultConfig()
	in := NewInjector(Config{Seed: 3, EvictStormPerMillion: 500, StormLines: 64})
	cfg.Faults = planFunc(in.Attach)
	cfg.StallCycles = 50_000_000
	m := sim.New(cfg)
	sys := tm.NewSystem(m, tm.TSX)
	const threads, incs, words = 4, 200, 16
	arr := m.Mem.AllocArray(words*threads, sim.LineSize)
	res, err := m.RunE(threads, func(c *sim.Context) {
		base := arr + sim.Addr(c.ID()*words*sim.LineSize)
		for i := 0; i < incs; i++ {
			sys.Atomic(c, func(tx tm.Tx) {
				for w := 0; w < words; w++ {
					a := base + sim.Addr(w*sim.LineSize)
					tx.Store(a, tx.Load(a)+1)
				}
			})
		}
	})
	if err != nil {
		t.Fatalf("storm workload stalled: %v", err)
	}
	_ = res
	if in.Stats.Storms == 0 || in.Stats.StormEvictions == 0 {
		t.Fatalf("no storms delivered: %+v", in.Stats)
	}
	if got := sys.HTM.Stats.Aborts[htm.Capacity]; got == 0 {
		t.Fatalf("storms evicted %d lines but caused no capacity aborts", in.Stats.StormEvictions)
	}
	for id := 0; id < threads; id++ {
		a := arr + sim.Addr(id*words*sim.LineSize)
		if got := m.Mem.ReadRaw(a); got != incs {
			t.Fatalf("thread %d word 0 = %d, want %d", id, got, incs)
		}
	}
}

// TestHoldStretchWidensLockWindow forces every fallback release to stretch
// and checks both that stretches are delivered and that they cost virtual
// time: the stretched run must be slower than the unstretched one on a pure
// lock workload.
func TestHoldStretchWidensLockWindow(t *testing.T) {
	run := func(perMille int) (uint64, *Injector) {
		cfg := sim.DefaultConfig()
		in := NewInjector(Config{Seed: 5, HoldStretchPerMille: perMille, HoldStretchCycles: 5000})
		cfg.Faults = planFunc(in.Attach)
		cfg.StallCycles = 50_000_000
		m := sim.New(cfg)
		mu := ssync.NewMutex(m.Mem)
		a := m.Mem.AllocLine(8)
		res, err := m.RunE(4, func(c *sim.Context) {
			for i := 0; i < 300; i++ {
				mu.Lock(c)
				c.Store(a, c.Load(a)+1)
				mu.Unlock(c)
			}
		})
		if err != nil {
			t.Fatalf("lock workload stalled: %v", err)
		}
		return res.Cycles, in
	}
	fast, _ := run(0)
	slow, in := run(1000)
	if in.Stats.HoldStretches == 0 {
		t.Fatal("no hold stretches delivered at per-mille 1000")
	}
	if slow <= fast {
		t.Fatalf("stretched run not slower: %d vs %d cycles", slow, fast)
	}
}

// TestJitterPerturbsTimingNotResults checks the weakest disturbance: clock
// jitter must change the cycle count but never the computed result.
func TestJitterPerturbsTimingNotResults(t *testing.T) {
	plain, plainCyc, _ := elisionCounterRun(t, nil, 4, 200)
	jit, jitCyc, _ := elisionCounterRun(t, Config{Seed: 11, JitterPerMillion: 2000, JitterCycles: 32}, 4, 200)
	if plain != jit {
		t.Fatalf("jitter changed the result: %d vs %d", plain, jit)
	}
	if jitCyc <= plainCyc {
		t.Fatalf("jitter added no virtual time: %d vs %d cycles", jitCyc, plainCyc)
	}
}

// TestChaosProfileFullWorkload runs the combined Chaos profile — all fault
// classes at once — and requires exact results plus evidence that the
// spurious, storm, and stretch paths all fired.
func TestChaosProfileFullWorkload(t *testing.T) {
	cfg := sim.DefaultConfig()
	in := NewInjector(Chaos(1))
	cfg.Faults = planFunc(in.Attach)
	cfg.StallCycles = 50_000_000
	m := sim.New(cfg)
	sys := tm.NewSystem(m, tm.TSX)
	a := m.Mem.AllocLine(8)
	const threads, incs = 8, 500
	_, err := m.RunE(threads, func(c *sim.Context) {
		for i := 0; i < incs; i++ {
			sys.Atomic(c, func(tx tm.Tx) {
				tx.Store(a, tx.Load(a)+1)
			})
		}
	})
	if err != nil {
		t.Fatalf("chaos workload stalled: %v", err)
	}
	if got, want := m.Mem.ReadRaw(a), uint64(threads*incs); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if in.Stats.SpuriousAborts+in.Stats.SpuriousMisses == 0 {
		t.Errorf("chaos profile delivered no spurious events: %+v", in.Stats)
	}
	if in.Stats.JitterEvents == 0 {
		t.Errorf("chaos profile delivered no jitter: %+v", in.Stats)
	}
}

// planFunc adapts a func to sim.FaultPlan so tests can attach a
// pre-constructed Injector (keeping a handle on its Stats).
type planFunc func(m *sim.Machine)

func (f planFunc) Attach(m *sim.Machine) { f(m) }
