// Package faults is the deterministic fault-injection subsystem: a
// seed-driven disturbance generator wired into a simulated machine's hooks.
// It models the environmental noise a real TSX machine suffers — interrupts
// and TLB shootdowns that abort transactions for no data reason, interfering
// processes trashing the L1, a descheduled lock holder stretching its
// critical section, timing wander — without giving up reproducibility: every
// disturbance is drawn from a per-machine PRNG seeded from Config.Seed, and
// the machine remains a closed serial system, so two runs with the same seed
// produce byte-identical results regardless of host parallelism.
//
// Wiring: Config implements sim.FaultPlan, so it can be placed in a
// sim.Config (or installed process-wide via sim.SetRunDefaults, which is how
// cmd/reproduce's -chaos flag reaches every machine the experiments build).
// sim.New then calls Attach, which creates one private Injector per machine
// and installs it into the machine's TickHook and HoldStretchHook; the
// spurious-abort path goes through the SpuriousAbortHook that package htm
// installs on its own machines.
package faults

import (
	"math/rand"

	"tsxhpc/internal/sim"
)

// Config selects which fault classes to inject and how hard. The zero value
// injects nothing. Rates are expressed per million virtual cycles (the
// machine-wide event streams) or per mille per event (the lock-release
// stream); each stream draws interarrival gaps uniformly in [1, 2·mean], so
// the configured rate is the long-run mean while individual gaps vary.
type Config struct {
	// Seed seeds every machine's private disturbance PRNG. Two runs with
	// equal Config produce identical fault schedules.
	Seed int64

	// SpuriousAbortPerMillion is the rate of environmental transaction
	// aborts (interrupt/TLB-shootdown model) per million cycles. An event
	// landing on a thread outside a transaction is a no-op (the interrupt
	// hit ordinary code). Spurious aborts are always may-retry.
	SpuriousAbortPerMillion int

	// EvictStormPerMillion is the rate of cache-trashing bursts per million
	// cycles; each storm force-evicts up to StormLines randomly chosen lines
	// from the running core's L1, firing the normal eviction hooks (capacity
	// aborts for written transactional lines, read-set demotion for read
	// ones).
	EvictStormPerMillion int
	// StormLines is how many eviction attempts one storm makes (default 32
	// when a storm rate is set).
	StormLines int

	// HoldStretchPerMille is the per-release probability (in 1/1000) that a
	// lock holder is "descheduled" just before releasing: the release is
	// delayed by HoldStretchCycles while the lock word stays set, widening
	// the LockBusy window for eliding transactions and parked waiters.
	HoldStretchPerMille int
	// HoldStretchCycles is the extra hold time per stretched release.
	HoldStretchCycles uint64

	// JitterPerMillion is the rate of virtual-clock jitter events per
	// million cycles; each adds a uniform [1, JitterCycles] penalty to the
	// charge it lands on, perturbing interleavings without any semantic
	// effect.
	JitterPerMillion int
	// JitterCycles is the maximum penalty of one jitter event.
	JitterCycles uint64
}

// Chaos is the standard stress profile used by `cmd/reproduce -chaos <seed>`
// and the chaos test suite: all four fault classes on at rates high enough
// to exercise every abort/fallback/watchdog path in seconds of virtual time,
// low enough that workloads still complete.
func Chaos(seed int64) Config {
	return Config{
		Seed:                    seed,
		SpuriousAbortPerMillion: 200,
		EvictStormPerMillion:    20,
		StormLines:              32,
		HoldStretchPerMille:     100,
		HoldStretchCycles:       2000,
		JitterPerMillion:        1000,
		JitterCycles:            64,
	}
}

// Attach implements sim.FaultPlan: it wires a fresh Injector (with its own
// PRNG) into machine m. Each machine gets a private injector so concurrent
// experiment jobs never share PRNG state — determinism survives any host
// parallelism.
func (cfg Config) Attach(m *sim.Machine) {
	NewInjector(cfg).Attach(m)
}

// Stats counts the disturbances an injector actually delivered.
type Stats struct {
	SpuriousAborts uint64 // spurious-abort events landing inside a transaction
	SpuriousMisses uint64 // spurious-abort events landing outside any transaction
	Storms         uint64 // eviction storms delivered
	StormEvictions uint64 // lines actually evicted by storms
	HoldStretches  uint64 // lock releases delayed
	JitterEvents   uint64 // clock-jitter penalties applied
	JitterCycles   uint64 // total penalty cycles added
}

// Injector delivers one machine's fault schedule. Create one per machine
// (Config.Attach does this); sharing an injector between machines would
// entangle their PRNG streams and break per-machine determinism.
type Injector struct {
	cfg Config
	m   *sim.Machine
	rng *rand.Rand

	// Countdowns to the next event of each stream, in virtual cycles.
	spuriousIn uint64
	stormIn    uint64
	jitterIn   uint64

	Stats Stats
}

// NewInjector creates an unattached injector for cfg. Tests use this form to
// keep a handle on Stats; production wiring goes through Config.Attach.
func NewInjector(cfg Config) *Injector {
	in := &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.StormLines == 0 {
		in.cfg.StormLines = 32
	}
	if cfg.JitterCycles == 0 {
		in.cfg.JitterCycles = 64
	}
	if cfg.HoldStretchCycles == 0 {
		in.cfg.HoldStretchCycles = 2000
	}
	if cfg.SpuriousAbortPerMillion > 0 {
		in.spuriousIn = in.gap(cfg.SpuriousAbortPerMillion)
	}
	if cfg.EvictStormPerMillion > 0 {
		in.stormIn = in.gap(cfg.EvictStormPerMillion)
	}
	if cfg.JitterPerMillion > 0 {
		in.jitterIn = in.gap(cfg.JitterPerMillion)
	}
	return in
}

// Attach installs the injector into m's hooks. One machine per injector.
func (in *Injector) Attach(m *sim.Machine) {
	in.m = m
	c := in.cfg
	if c.SpuriousAbortPerMillion > 0 || c.EvictStormPerMillion > 0 || c.JitterPerMillion > 0 {
		m.TickHook = in.tick
	}
	if c.HoldStretchPerMille > 0 {
		m.HoldStretchHook = in.holdStretch
	}
}

// gap draws the next interarrival time for a perMillion-rate stream:
// uniform in [1, 2·mean] cycles, mean = 1e6/perMillion.
func (in *Injector) gap(perMillion int) uint64 {
	mean := int64(1_000_000 / perMillion)
	if mean < 1 {
		mean = 1
	}
	return uint64(in.rng.Int63n(2*mean)) + 1
}

// tick is the machine's TickHook: called on every virtual-clock charge with
// the running context and the cycles about to elapse. It advances each event
// stream's countdown and delivers at most one event per stream per charge
// (a charge spanning several due events coalesces them — acceptable, since
// charges are small relative to interarrival gaps at sane rates). Returns
// extra cycles to add to the charge (clock jitter).
func (in *Injector) tick(c *sim.Context, cyc uint64) uint64 {
	cfg := &in.cfg
	var extra uint64
	if cfg.SpuriousAbortPerMillion > 0 {
		if in.spuriousIn <= cyc {
			in.spuriousIn = in.gap(cfg.SpuriousAbortPerMillion)
			// The disturbance hits whichever thread the clock is charging.
			// Outside a transaction an interrupt is harmless; inside, the
			// htm-installed hook dooms the transaction with a may-retry
			// Spurious abort.
			if h := in.m.SpuriousAbortHook; h != nil && c.InTxn {
				in.Stats.SpuriousAborts++
				h(c)
			} else {
				in.Stats.SpuriousMisses++
			}
		} else {
			in.spuriousIn -= cyc
		}
	}
	if cfg.EvictStormPerMillion > 0 {
		if in.stormIn <= cyc {
			in.stormIn = in.gap(cfg.EvictStormPerMillion)
			in.Stats.Storms++
			in.Stats.StormEvictions += uint64(in.m.EvictStorm(c, cfg.StormLines, in.rng.Intn))
		} else {
			in.stormIn -= cyc
		}
	}
	if cfg.JitterPerMillion > 0 {
		if in.jitterIn <= cyc {
			in.jitterIn = in.gap(cfg.JitterPerMillion)
			pen := uint64(in.rng.Int63n(int64(cfg.JitterCycles))) + 1
			in.Stats.JitterEvents++
			in.Stats.JitterCycles += pen
			extra += pen
		} else {
			in.jitterIn -= cyc
		}
	}
	return extra
}

// holdStretch is the machine's HoldStretchHook: with probability
// HoldStretchPerMille/1000 per lock release, the holder is "descheduled" for
// HoldStretchCycles before the lock word clears.
func (in *Injector) holdStretch(c *sim.Context) uint64 {
	if in.rng.Intn(1000) >= in.cfg.HoldStretchPerMille {
		return 0
	}
	in.Stats.HoldStretches++
	return in.cfg.HoldStretchCycles
}
