package faults

import (
	"errors"
	"fmt"
	"testing"
)

func TestJobPlanZeroValueInjectsNothing(t *testing.T) {
	var p JobPlan
	if p.Enabled() {
		t.Fatal("zero plan reports Enabled")
	}
	for attempt := 1; attempt <= 3; attempt++ {
		for i := 0; i < 100; i++ {
			if err := p.Check(fmt.Sprintf("cell/%d", i), attempt); err != nil {
				t.Fatalf("zero plan injected %v", err)
			}
		}
	}
}

// TestJobChaosDeterministicAndTransient: the flaky-cell lottery is a pure
// function of (seed, key); flaky cells fail exactly their first
// TransientFailures attempts, with the transient class, at roughly the
// configured rate.
func TestJobChaosDeterministicAndTransient(t *testing.T) {
	p := JobChaos(42)
	flaky := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("stamp/bayes/tsx/%dT", i)
		first := p.Check(key, 1)
		if again := p.Check(key, 1); (first == nil) != (again == nil) {
			t.Fatalf("lottery not deterministic for %s", key)
		}
		if first == nil {
			continue
		}
		flaky++
		var jf *JobFault
		if !errors.As(first, &jf) || jf.Class != "transient" || jf.JobFailureClass() != "transient" {
			t.Fatalf("fault = %v", first)
		}
		if p.Check(key, 2) == nil {
			t.Fatalf("%s: second attempt did not fail (TransientFailures=2)", key)
		}
		if p.Check(key, 3) != nil {
			t.Fatalf("%s: third attempt still failing; transient faults must clear", key)
		}
	}
	// 150 per mille over 1000 cells: allow generous slack around the mean.
	if flaky < 100 || flaky > 220 {
		t.Fatalf("flaky cells = %d of 1000, want ~150", flaky)
	}
	if other := JobChaos(43); other.Check("stamp/bayes/tsx/0T", 1) == nil == (p.Check("stamp/bayes/tsx/0T", 1) == nil) {
		// Seeds may coincide on one key; check a different one too before
		// declaring the seed dead.
		same := 0
		for i := 0; i < 100; i++ {
			key := fmt.Sprintf("k/%d", i)
			if (other.Check(key, 1) == nil) == (p.Check(key, 1) == nil) {
				same++
			}
		}
		if same == 100 {
			t.Fatal("seed does not influence the lottery")
		}
	}
}

// TestPoisonPrefix: poisoned prefixes fail every attempt with the
// deterministic class — the quarantine path — and only matching cells are
// hit.
func TestPoisonPrefix(t *testing.T) {
	p := JobPlan{Poison: []string{"stamp/bayes"}}
	if !p.Enabled() {
		t.Fatal("poison plan not Enabled")
	}
	for attempt := 1; attempt <= 4; attempt++ {
		err := p.Check("stamp/bayes/tsx/4T", attempt)
		var jf *JobFault
		if !errors.As(err, &jf) || jf.Class != "deterministic" || jf.Attempt != attempt {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
	}
	if err := p.Check("stamp/vacation/tsx/4T", 1); err != nil {
		t.Fatalf("non-matching cell injected: %v", err)
	}
}
